package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/locking"
	"pangea/internal/services"
)

// WorkerConfig configures one worker node's storage process.
type WorkerConfig struct {
	// PrivateKey is the cluster key; requests with a different key are
	// rejected (§3.3).
	PrivateKey string
	// Memory is the size of the node's shared buffer pool.
	Memory int64
	// DiskDir is the root directory of the node's simulated drives.
	DiskDir string
	// Disks is the number of drives (default 1).
	Disks int
	// DiskConfig throttles the drives; zero value means unthrottled.
	DiskConfig disk.Config
	// Policy is the paging policy; nil means data-aware.
	Policy core.Policy
	// PinWindow bounds how many scan pages are pinned ahead of the
	// computation (the depth of the Fig 2 circular buffer). Default 8.
	PinWindow int
	// Logf sinks diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Worker is one Pangea worker node: a storage process owning the node's
// buffer pool, file system and services, serving the data-proxy protocol
// over TCP.
type Worker struct {
	cfg   WorkerConfig
	auth  string
	pool  *core.BufferPool
	array *disk.Array
	ln    net.Listener

	// mu guards only the maps below; each setWriter carries its own lock so
	// record appends to different locality sets proceed in parallel, the
	// same per-set granularity the buffer pool itself uses.
	mu      locking.RWMutex
	writers map[string]*setWriter
	pinned  map[string]map[int64]*core.Page // pages pinned via PinPageReq
	closed  bool

	wg sync.WaitGroup
}

// setWriter is one locality set's server-side sequential writer plus the
// lock that serializes appends to it (SeqWriter is single-threaded by
// design: one writer per page, §8).
type setWriter struct {
	mu locking.Mutex
	wr *services.SeqWriter
}

// NewWorker builds a worker and starts listening on addr ("host:0" picks a
// free port).
func NewWorker(addr string, cfg WorkerConfig) (*Worker, error) {
	if cfg.Disks <= 0 {
		cfg.Disks = 1
	}
	if cfg.PinWindow <= 0 {
		cfg.PinWindow = 8
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	array, err := disk.NewArray(cfg.DiskDir, cfg.Disks, cfg.DiskConfig)
	if err != nil {
		return nil, err
	}
	pool, err := core.NewPool(core.PoolConfig{Memory: cfg.Memory, Array: array, Policy: cfg.Policy})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		cfg:     cfg,
		auth:    AuthToken(cfg.PrivateKey),
		pool:    pool,
		array:   array,
		ln:      ln,
		writers: make(map[string]*setWriter),
		pinned:  make(map[string]map[int64]*core.Page),
	}
	w.mu.Init(locking.RankWorker)
	w.wg.Add(1)
	go w.serve()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Pool exposes the node's buffer pool to co-located computation processes,
// which touch page bytes through the pool's shared memory.
func (w *Worker) Pool() *core.BufferPool { return w.pool }

// Close stops serving and releases the node's resources. Data on disk is
// preserved (the node may be "revived" by a recovery test).
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	err := w.ln.Close()
	w.wg.Wait()
	return err
}

func (w *Worker) serve() {
	defer w.wg.Done()
	for {
		c, err := w.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			w.cfg.Logf("worker accept: %v", err)
			return
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(newConn(c))
		}()
	}
}

func (w *Worker) handleConn(c *conn) {
	defer c.close()
	msg, err := c.recv()
	if err != nil {
		return
	}
	switch req := msg.(type) {
	case CreateSetReq:
		c.send(w.handleCreateSet(req))
	case AddRecordsReq:
		c.send(w.handleAddRecords(req))
	case FetchSetReq:
		w.handleFetchSet(c, req)
	case GetSetPagesReq:
		w.handleGetSetPages(c, req)
	case PinPageReq:
		c.send(w.handlePinPage(req))
	case UnpinPageReq:
		c.send(w.handleUnpinPage(req))
	case DropSetReq:
		c.send(w.handleDropSet(req))
	case SetStatsReq:
		c.send(w.handleSetStats(req))
	case NodeStatsReq:
		c.send(w.handleNodeStats(req))
	case ShutdownReq:
		if w.checkAuth(req.Auth) == nil {
			c.send(OKResp{})
			go w.Close()
		} else {
			c.send(OKResp{Err: "invalid key"})
		}
	default:
		c.send(OKResp{Err: fmt.Sprintf("worker: unexpected message %T", msg)})
	}
}

func (w *Worker) checkAuth(token string) error {
	if token != w.auth {
		return errors.New("cluster: invalid private key")
	}
	return nil
}

func (w *Worker) handleCreateSet(req CreateSetReq) OKResp {
	if err := w.checkAuth(req.Auth); err != nil {
		return OKResp{Err: err.Error()}
	}
	_, err := w.pool.CreateSet(core.SetSpec{
		Name:        req.Name,
		PageSize:    req.PageSize,
		Durability:  durabilityFromWire(req.Durability),
		MemoryQuota: req.MemoryQuota,
		Weight:      req.Weight,
		Layout:      core.PageLayout(req.Layout),
		Columns:     req.Columns,
	})
	if err != nil {
		return OKResp{Err: err.Error()}
	}
	return OKResp{}
}

// writerFor returns the set's server-side sequential writer, creating it on
// first use.
func (w *Worker) writerFor(name string) (*setWriter, error) {
	w.mu.RLock()
	sw, ok := w.writers[name]
	w.mu.RUnlock()
	if ok {
		return sw, nil
	}
	set, ok := w.pool.GetSet(name)
	if !ok {
		return nil, fmt.Errorf("cluster: no set %q on worker %s", name, w.Addr())
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	sw, ok = w.writers[name]
	if !ok {
		sw = &setWriter{wr: services.NewSeqWriter(set)}
		sw.mu.Init(locking.RankSetWriter)
		w.writers[name] = sw
	}
	return sw, nil
}

// closeWriter seals the set's pending writer page so scans observe all
// records.
func (w *Worker) closeWriter(name string) error {
	w.mu.Lock()
	sw := w.writers[name]
	delete(w.writers, name)
	w.mu.Unlock()
	if sw == nil {
		return nil
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.wr.Close()
}

func (w *Worker) handleAddRecords(req AddRecordsReq) OKResp {
	if err := w.checkAuth(req.Auth); err != nil {
		return OKResp{Err: err.Error()}
	}
	sw, err := w.writerFor(req.Set)
	if err != nil {
		return OKResp{Err: err.Error()}
	}
	// Appends to this set serialize on its writer; appends to other sets on
	// this worker proceed concurrently.
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for _, rec := range req.Records {
		if err := sw.wr.Add(rec); err != nil {
			return OKResp{Err: err.Error()}
		}
	}
	return OKResp{}
}

const fetchBatch = 512

func (w *Worker) handleFetchSet(c *conn, req FetchSetReq) {
	fail := func(err error) { c.send(RecordBatch{Last: true, Err: err.Error()}) }
	if err := w.checkAuth(req.Auth); err != nil {
		fail(err)
		return
	}
	if err := w.closeWriter(req.Set); err != nil {
		fail(err)
		return
	}
	set, ok := w.pool.GetSet(req.Set)
	if !ok {
		fail(fmt.Errorf("cluster: no set %q", req.Set))
		return
	}
	batch := make([][]byte, 0, fetchBatch)
	flush := func(last bool) error {
		err := c.send(RecordBatch{Records: batch, Last: last})
		batch = batch[:0]
		return err
	}
	err := services.ScanSet(set, 1, func(_ int, rec []byte) error {
		batch = append(batch, append([]byte(nil), rec...))
		if len(batch) >= fetchBatch {
			return flush(false)
		}
		return nil
	})
	if err != nil {
		fail(err)
		return
	}
	if err := flush(true); err != nil {
		w.cfg.Logf("fetch %s: %v", req.Set, err)
	}
}

// handleGetSetPages implements the Fig 2 scan protocol: storage threads pin
// pages ahead (bounded by PinWindow), stream their shared-memory metadata,
// and unpin each page when the computation acknowledges it with PageDone.
func (w *Worker) handleGetSetPages(c *conn, req GetSetPagesReq) {
	fail := func(err error) { c.send(PageMeta{NoMorePage: true, Err: err.Error()}) }
	if err := w.checkAuth(req.Auth); err != nil {
		fail(err)
		return
	}
	if err := w.closeWriter(req.Set); err != nil {
		fail(err)
		return
	}
	set, ok := w.pool.GetSet(req.Set)
	if !ok {
		fail(fmt.Errorf("cluster: no set %q", req.Set))
		return
	}
	set.SetReading(core.SequentialRead)
	set.SetCurrentOp(core.OpRead)

	nums := set.PageNums()
	var (
		mu     sync.Mutex
		live   = make(map[int64]*core.Page, len(nums))
		sem    = make(chan struct{}, w.cfg.PinWindow)
		ackErr = make(chan error, 1)
	)
	// Acknowledgement reader: unpin pages the computation has finished.
	go func() {
		for {
			msg, err := c.recv()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					w.cfg.Logf("scan ack: %v", err)
				}
				ackErr <- err
				return
			}
			pd, ok := msg.(PageDone)
			if !ok {
				ackErr <- fmt.Errorf("cluster: unexpected %T during scan", msg)
				return
			}
			if pd.PageNum < 0 {
				// End-of-scan handshake: all pages were acknowledged in
				// order on this connection, so nothing is left pinned.
				// Confirm so the proxy can return.
				c.send(OKResp{})
				ackErr <- nil
				return
			}
			mu.Lock()
			p := live[pd.PageNum]
			delete(live, pd.PageNum)
			mu.Unlock()
			if p != nil {
				if err := set.Unpin(p, false); err != nil {
					w.cfg.Logf("scan unpin %d: %v", pd.PageNum, err)
				}
				<-sem
			}
		}
	}()

	aborted := false
	for _, num := range nums {
		sem <- struct{}{}
		p, err := set.Pin(num)
		if err != nil {
			fail(err)
			aborted = true
			break
		}
		mu.Lock()
		live[num] = p
		mu.Unlock()
		if err := c.send(PageMeta{PageNum: num, Offset: p.Offset(), Size: p.Size()}); err != nil {
			aborted = true
			break
		}
	}
	if !aborted {
		c.send(PageMeta{NoMorePage: true})
	}
	// Wait for the computation to finish (connection closes) and release
	// anything still pinned.
	<-ackErr
	mu.Lock()
	for _, p := range live {
		_ = set.Unpin(p, false)
	}
	live = nil
	mu.Unlock()
	set.SetCurrentOp(core.OpNone)
}

func (w *Worker) handlePinPage(req PinPageReq) PinPageResp {
	if err := w.checkAuth(req.Auth); err != nil {
		return PinPageResp{Err: err.Error()}
	}
	set, ok := w.pool.GetSet(req.Set)
	if !ok {
		return PinPageResp{Err: fmt.Sprintf("cluster: no set %q", req.Set)}
	}
	p, err := set.NewPage()
	if err != nil {
		return PinPageResp{Err: err.Error()}
	}
	w.mu.Lock()
	m := w.pinned[req.Set]
	if m == nil {
		m = make(map[int64]*core.Page)
		w.pinned[req.Set] = m
	}
	m[p.Num()] = p
	w.mu.Unlock()
	return PinPageResp{PageNum: p.Num(), Offset: p.Offset(), Size: p.Size()}
}

func (w *Worker) handleUnpinPage(req UnpinPageReq) OKResp {
	if err := w.checkAuth(req.Auth); err != nil {
		return OKResp{Err: err.Error()}
	}
	set, ok := w.pool.GetSet(req.Set)
	if !ok {
		return OKResp{Err: fmt.Sprintf("cluster: no set %q", req.Set)}
	}
	w.mu.Lock()
	p := w.pinned[req.Set][req.PageNum]
	delete(w.pinned[req.Set], req.PageNum)
	w.mu.Unlock()
	if p == nil {
		return OKResp{Err: fmt.Sprintf("cluster: page %d of %q not pinned via proxy", req.PageNum, req.Set)}
	}
	if err := set.Unpin(p, req.Dirty); err != nil {
		return OKResp{Err: err.Error()}
	}
	return OKResp{}
}

func (w *Worker) handleDropSet(req DropSetReq) OKResp {
	if err := w.checkAuth(req.Auth); err != nil {
		return OKResp{Err: err.Error()}
	}
	if err := w.closeWriter(req.Set); err != nil {
		return OKResp{Err: err.Error()}
	}
	set, ok := w.pool.GetSet(req.Set)
	if !ok {
		return OKResp{Err: fmt.Sprintf("cluster: no set %q", req.Set)}
	}
	if err := w.pool.DropSet(set); err != nil {
		return OKResp{Err: err.Error()}
	}
	return OKResp{}
}

func (w *Worker) handleSetStats(req SetStatsReq) SetStatsResp {
	if err := w.checkAuth(req.Auth); err != nil {
		return SetStatsResp{Err: err.Error()}
	}
	set, ok := w.pool.GetSet(req.Set)
	if !ok {
		return SetStatsResp{Err: fmt.Sprintf("cluster: no set %q", req.Set)}
	}
	return SetStatsResp{
		NumPages:      set.NumPages(),
		Resident:      set.ResidentPages(),
		ResidentBytes: set.ResidentBytes(),
		Entitlement:   set.Entitlement(),
		DiskBytes:     set.DiskBytes(),
		SpillWrites:   set.SpillWrites(),
		LoadReads:     set.LoadReads(),
		ZoneMapChecks: set.ZoneMapChecks(),
		ZoneMapSkips:  set.ZoneMapSkips(),
		IndexChecks:   set.IndexChecks(),
		IndexHits:     set.IndexHits(),
	}
}

func (w *Worker) handleNodeStats(req NodeStatsReq) NodeStatsResp {
	if err := w.checkAuth(req.Auth); err != nil {
		return NodeStatsResp{Err: err.Error()}
	}
	stats := w.pool.Stats()
	return NodeStatsResp{
		Nodes:            w.pool.NUMANodes(),
		Shards:           w.pool.AllocatorShards(),
		NodeUsedBytes:    w.pool.NodeUsedBytes(),
		CrossNodeSteals:  stats.CrossNodeSteals.Load(),
		PrefetchesIssued: stats.PrefetchesIssued.Load(),
		PrefetchHits:     stats.PrefetchHits.Load(),
		PrefetchWasted:   stats.PrefetchWasted.Load(),
		LoadsInFlight:    stats.LoadsInFlight.Load(),
		ZoneMapChecks:    stats.ZoneMapChecks.Load(),
		ZoneMapSkips:     stats.ZoneMapSkips.Load(),
		IndexChecks:      stats.IndexChecks.Load(),
		IndexHits:        stats.IndexHits.Load(),
	}
}
