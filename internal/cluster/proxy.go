package cluster

import (
	"errors"
	"fmt"
	"sync"

	"pangea/internal/core"
	"pangea/internal/services"
)

// DataProxy is the computation-process side of Fig 2. It is co-located with
// one worker's storage process: control messages (GetSetPages, PinPage,
// page acknowledgements) travel over the socket, while page bytes are
// accessed directly through the storage process's shared memory arena —
// no copy, no serialization.
type DataProxy struct {
	workerAddr string
	auth       string
	pool       *core.BufferPool // the co-located worker's shared memory
}

// NewDataProxy attaches a computation process to its node's worker. The
// worker handle provides the shared memory mapping; the address carries the
// socket protocol.
func NewDataProxy(w *Worker, privateKey string) *DataProxy {
	return &DataProxy{workerAddr: w.Addr(), auth: AuthToken(privateKey), pool: w.Pool()}
}

// Scan runs the Fig 2 flow: a GetSetPages message starts the storage
// process pinning pages; their metadata is pushed into a thread-safe
// circular buffer; numThreads long-living worker threads pull page metadata
// in a loop, slice the shared arena at the indicated offset, and run fn
// over every record. Pages are acknowledged (and unpinned by the storage
// process) as each thread finishes them.
func (dp *DataProxy) Scan(set string, numThreads int, fn func(thread int, rec []byte) error) error {
	if numThreads < 1 {
		numThreads = 1
	}
	c, err := dial(dp.workerAddr)
	if err != nil {
		return err
	}
	defer c.close()
	if err := c.send(GetSetPagesReq{Auth: dp.auth, Set: set}); err != nil {
		return err
	}

	cb := NewCircularBuffer(16)
	var ackMu sync.Mutex // gob encoder is not concurrency-safe
	ack := func(num int64) error {
		ackMu.Lock()
		defer ackMu.Unlock()
		return c.send(PageDone{PageNum: num})
	}

	// Receiver: socket -> circular buffer.
	recvErr := make(chan error, 1)
	go func() {
		defer cb.Close()
		for {
			msg, err := c.recv()
			if err != nil {
				recvErr <- err
				return
			}
			pm, ok := msg.(PageMeta)
			if !ok {
				recvErr <- fmt.Errorf("cluster: unexpected %T in scan stream", msg)
				return
			}
			if pm.Err != "" {
				recvErr <- errors.New(pm.Err)
				return
			}
			if pm.NoMorePage {
				recvErr <- nil
				return
			}
			if !cb.Push(pm) {
				recvErr <- nil
				return
			}
		}
	}()

	// Long-living computation threads: pull page metadata, touch shared
	// memory, acknowledge.
	var wg sync.WaitGroup
	workErrs := make(chan error, numThreads)
	arena := dp.pool.SharedMemory()
	for t := 0; t < numThreads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for {
				pm, ok := cb.Pull()
				if !ok {
					return
				}
				buf := arena.Slice(pm.Offset, pm.Size)
				err := services.WalkPage(buf, func(rec []byte) error { return fn(t, rec) })
				if aerr := ack(pm.PageNum); err == nil {
					err = aerr
				}
				if err != nil {
					workErrs <- err
					cb.Close()
					return
				}
			}
		}(t)
	}
	wg.Wait()
	close(workErrs)
	for err := range workErrs {
		if err != nil {
			return err
		}
	}
	if err := <-recvErr; err != nil {
		return err
	}
	// End-of-scan handshake: the storage process confirms every page
	// acknowledgement has been applied before we return, so the set can be
	// dropped or rewritten immediately afterwards.
	if err := ack(-1); err != nil {
		return err
	}
	if _, err := c.recv(); err != nil {
		return err
	}
	return nil
}

// PageWriter writes records into a set through PinPage/UnpinPage messages:
// the storage process pins a fresh page and returns its shared-memory
// offset; the computation thread fills it in place and unpins it when full
// (§5). One PageWriter per thread.
type PageWriter struct {
	dp   *DataProxy
	set  string
	meta PinPageResp
	buf  []byte
	off  int
	open bool
	n    int64
}

// NewPageWriter creates a proxy-side writer for a set on the co-located
// worker.
func (dp *DataProxy) NewPageWriter(set string) *PageWriter {
	return &PageWriter{dp: dp, set: set}
}

// Add appends one record, pinning a new shared-memory page when needed.
func (pw *PageWriter) Add(rec []byte) error {
	for {
		if !pw.open {
			msg, err := call(pw.dp.workerAddr, PinPageReq{Auth: pw.dp.auth, Set: pw.set})
			if err != nil {
				return err
			}
			resp, ok := msg.(PinPageResp)
			if !ok {
				return fmt.Errorf("cluster: unexpected %T", msg)
			}
			if resp.Err != "" {
				return errors.New(resp.Err)
			}
			pw.meta = resp
			pw.buf = pw.dp.pool.SharedMemory().Slice(resp.Offset, resp.Size)
			services.InitServicePage(pw.buf, int(resp.Size)-services.PageHeaderSize)
			pw.off = services.PageHeaderSize
			pw.open = true
		}
		next, ok := services.AppendServiceRecord(pw.buf, pw.off, len(pw.buf), rec)
		if ok {
			pw.off = next
			pw.n++
			return nil
		}
		if err := pw.unpin(); err != nil {
			return err
		}
	}
}

// Count reports records written.
func (pw *PageWriter) Count() int64 { return pw.n }

func (pw *PageWriter) unpin() error {
	if !pw.open {
		return nil
	}
	pw.open = false
	msg, err := call(pw.dp.workerAddr, UnpinPageReq{Auth: pw.dp.auth, Set: pw.set, PageNum: pw.meta.PageNum, Dirty: true})
	return respErr(msg, err)
}

// Close unpins the writer's current page.
func (pw *PageWriter) Close() error { return pw.unpin() }
