package cluster

import "sync"

// CircularBuffer is the thread-safe circular buffer of Fig 2: the data
// proxy pushes page metadata received from the storage process into it, and
// long-living worker threads pull one page's metadata at a time. Push
// blocks while the ring is full; Pull blocks while it is empty. Closing the
// buffer lets Pull drain the remaining items and then report completion —
// the NoMorePage signal.
type CircularBuffer struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []PageMeta
	head     int
	n        int
	closed   bool
}

// NewCircularBuffer builds a ring holding up to capacity page descriptors.
func NewCircularBuffer(capacity int) *CircularBuffer {
	if capacity < 1 {
		capacity = 1
	}
	cb := &CircularBuffer{items: make([]PageMeta, capacity)}
	cb.notFull = sync.NewCond(&cb.mu)
	cb.notEmpty = sync.NewCond(&cb.mu)
	return cb
}

// Push enqueues one page descriptor, blocking while the ring is full.
// Pushing to a closed buffer reports false.
func (cb *CircularBuffer) Push(m PageMeta) bool {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for cb.n == len(cb.items) && !cb.closed {
		cb.notFull.Wait()
	}
	if cb.closed {
		return false
	}
	cb.items[(cb.head+cb.n)%len(cb.items)] = m
	cb.n++
	cb.notEmpty.Signal()
	return true
}

// Pull dequeues one page descriptor, blocking while the ring is empty. ok
// is false once the buffer is closed and drained — no more pages.
func (cb *CircularBuffer) Pull() (m PageMeta, ok bool) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for cb.n == 0 && !cb.closed {
		cb.notEmpty.Wait()
	}
	if cb.n == 0 {
		return PageMeta{}, false
	}
	m = cb.items[cb.head]
	cb.head = (cb.head + 1) % len(cb.items)
	cb.n--
	cb.notFull.Signal()
	return m, true
}

// Close marks the end of the page stream. Blocked Pulls drain remaining
// items and then return ok=false; blocked Pushes abort.
func (cb *CircularBuffer) Close() {
	cb.mu.Lock()
	cb.closed = true
	cb.notEmpty.Broadcast()
	cb.notFull.Broadcast()
	cb.mu.Unlock()
}

// Len reports the queued descriptor count.
func (cb *CircularBuffer) Len() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return cb.n
}
