// Package paging implements the baseline page replacement policies the
// paper compares Pangea's data-aware policy against (§9.1.1, §9.2): global
// LRU and MRU, and the DBMIN family (DBMIN-1, DBMIN-1000, DBMIN-adaptive,
// DBMIN-tuned) from Chou & DeWitt's query locality set model.
//
// All policies satisfy core.Policy and plug into the unified buffer pool
// unchanged, so every experiment can swap the paging strategy while keeping
// the rest of the system identical — exactly how the paper's ablations are
// run. Policies compute over an immutable core.PolicyView snapshot taken by
// the eviction daemon; they never see pool or set locks.
package paging

import (
	"sort"

	"pangea/internal/core"
)

// batchSize is the 10% eviction granularity the paper uses for its LRU and
// MRU baselines: "10% of most recently used pages will be evicted at each
// eviction for MRU, and at most 10% of least recently used pages for LRU".
func batchSize(n int) int {
	b := (n + 9) / 10
	if b < 1 {
		b = 1
	}
	return b
}

// LRU is a global least-recently-used policy across all locality sets. It
// ignores data semantics entirely: one recency order for user data, job
// data and execution data alike. Each round evicts 10% of the evictable
// pages, oldest first.
type LRU struct{}

// NewLRU returns the global LRU baseline.
func NewLRU() *LRU { return &LRU{} }

// Name implements core.Policy.
func (*LRU) Name() string { return "LRU" }

// SelectVictims implements core.Policy.
func (*LRU) SelectVictims(view *core.PolicyView) ([]core.PageRef, error) {
	cands := view.EvictablePages()
	if len(cands) == 0 {
		return nil, nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].LastRef < cands[j].LastRef })
	return cands[:batchSize(len(cands))], nil
}

// MRU is a global most-recently-used policy across all locality sets. Each
// round evicts 10% of the evictable pages, newest first.
type MRU struct{}

// NewMRU returns the global MRU baseline.
func NewMRU() *MRU { return &MRU{} }

// Name implements core.Policy.
func (*MRU) Name() string { return "MRU" }

// SelectVictims implements core.Policy.
func (*MRU) SelectVictims(view *core.PolicyView) ([]core.PageRef, error) {
	cands := view.EvictablePages()
	if len(cands) == 0 {
		return nil, nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].LastRef > cands[j].LastRef })
	return cands[:batchSize(len(cands))], nil
}
