package paging

import (
	"errors"
	"fmt"
	"testing"

	"pangea/internal/core"
	"pangea/internal/disk"
)

func newPool(t *testing.T, mem int64, p core.Policy) *core.BufferPool {
	t.Helper()
	arr, err := disk.NewArray(t.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		t.Fatal(err)
	}
	bp, err := core.NewPool(core.PoolConfig{Memory: mem, Array: arr, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = arr.RemoveAll() })
	return bp
}

// fill writes n dirty write-back pages into a fresh set.
func fill(t *testing.T, bp *core.BufferPool, name string, pageSize int64, n int) *core.LocalitySet {
	t.Helper()
	s, err := bp.CreateSet(core.SetSpec{Name: name, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("NewPage %d in %s: %v", i, name, err)
		}
		p.Bytes()[0] = byte(i)
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestLRUEvictsOldestAcrossSets(t *testing.T) {
	const ps = 4096
	bp := newPool(t, 64*ps, NewLRU())
	a := fill(t, bp, "a", ps, 4) // oldest pages
	b := fill(t, bp, "b", ps, 4)

	// Exhaust memory so the pool runs LRU evictions, then verify the older
	// set a lost at least as many pages as the newer set b.
	fillMore := func(name string, n int) {
		s, err := bp.CreateSet(core.SetSpec{Name: name, PageSize: ps})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			p, err := s.NewPage()
			if err != nil {
				t.Fatalf("pressure page %d: %v", i, err)
			}
			_ = s.Unpin(p, true)
		}
	}
	fillMore("pressure", 58)
	if a.ResidentPages() > b.ResidentPages() {
		t.Errorf("LRU kept older set a (%d pages) over newer set b (%d pages)",
			a.ResidentPages(), b.ResidentPages())
	}
}

func TestMRUProtectsScanFront(t *testing.T) {
	// For a loop-sequential scan, MRU keeps the front of the file resident.
	const ps = 4096
	bp := newPool(t, 10*ps, NewMRU())
	s := fill(t, bp, "scan", ps, 20)
	// Pages 0..k survive; the most recently written tail was evicted.
	front, err := s.Pin(0)
	if err != nil {
		t.Fatalf("front page not resident under MRU: %v", err)
	}
	_ = s.Unpin(front, false)
	if got := bp.Stats().Loads.Load(); got != 0 {
		t.Errorf("front pin caused %d disk loads; MRU should keep the scan front", got)
	}
}

func TestLRUEvictsScanFront(t *testing.T) {
	const ps = 4096
	bp := newPool(t, 10*ps, NewLRU())
	s := fill(t, bp, "scan", ps, 20)
	front, err := s.Pin(0)
	if err != nil {
		t.Fatalf("pin front: %v", err)
	}
	_ = s.Unpin(front, false)
	if got := bp.Stats().Loads.Load(); got == 0 {
		t.Error("under LRU the scan front should have been evicted and re-loaded")
	}
}

func TestDBMIN1EvictsDownToOnePage(t *testing.T) {
	const ps = 4096
	bp := newPool(t, 8*ps, NewDBMIN1())
	s := fill(t, bp, "s", ps, 24)
	if s.ResidentPages() > 7 {
		t.Errorf("resident = %d, want bounded by pool", s.ResidentPages())
	}
	if bp.Stats().Evictions.Load() == 0 {
		t.Error("expected evictions under DBMIN-1")
	}
}

func TestDBMIN1000Blocks(t *testing.T) {
	// Desired size 1000 pages > pool of 8 pages: allocation must fail with
	// the DBMIN blocking error once the pool is full.
	const ps = 4096
	bp := newPool(t, 8*ps, NewDBMIN1000())
	s, err := bp.CreateSet(core.SetSpec{Name: "s", PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	for i := 0; i < 24; i++ {
		p, err := s.NewPage()
		if err != nil {
			gotErr = err
			break
		}
		_ = s.Unpin(p, true)
	}
	if gotErr == nil {
		t.Fatal("DBMIN-1000 should block when desired size exceeds the pool")
	}
	if !errors.Is(gotErr, ErrDBMINBlocked) {
		t.Errorf("err = %v, want ErrDBMINBlocked", gotErr)
	}
}

func TestDBMINAdaptiveBlocksOnLoopingScan(t *testing.T) {
	// A looping-sequential set larger than memory gets a desired size equal
	// to the full set, so adaptive DBMIN blocks — the Fig 3 failure.
	const ps = 4096
	bp := newPool(t, 8*ps, NewDBMINAdaptive())
	s, err := bp.CreateSet(core.SetSpec{Name: "s", PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	s.SetReading(core.SequentialRead) // service stamps loop-sequential read
	var gotErr error
	for i := 0; i < 24; i++ {
		p, err := s.NewPage()
		if err != nil {
			gotErr = err
			break
		}
		_ = s.Unpin(p, true)
	}
	if !errors.Is(gotErr, ErrDBMINBlocked) {
		t.Errorf("err = %v, want ErrDBMINBlocked", gotErr)
	}
}

func TestDBMINTunedDoesNotBlock(t *testing.T) {
	const ps = 4096
	bp := newPool(t, 8*ps, NewDBMINTuned())
	s, err := bp.CreateSet(core.SetSpec{Name: "s", PageSize: ps})
	if err != nil {
		t.Fatal(err)
	}
	s.SetReading(core.SequentialRead)
	for i := 0; i < 24; i++ {
		p, err := s.NewPage()
		if err != nil {
			t.Fatalf("DBMIN-tuned must not block: page %d: %v", i, err)
		}
		p.Bytes()[0] = byte(i)
		if err := s.Unpin(p, true); err != nil {
			t.Fatal(err)
		}
	}
	// All pages must be readable back.
	for i := 0; i < 24; i++ {
		p, err := s.Pin(int64(i))
		if err != nil {
			t.Fatalf("Pin %d: %v", i, err)
		}
		if p.Bytes()[0] != byte(i) {
			t.Errorf("page %d corrupt", i)
		}
		_ = s.Unpin(p, false)
	}
}

func TestSizerFixed(t *testing.T) {
	s := SizerFixed(7)
	if got := s(nil, 100); got != 7 {
		t.Errorf("SizerFixed(7) = %d", got)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, c := range []struct {
		p    core.Policy
		want string
	}{
		{NewLRU(), "LRU"},
		{NewMRU(), "MRU"},
		{NewDBMIN1(), "DBMIN-1"},
		{NewDBMIN1000(), "DBMIN-1000"},
		{NewDBMINAdaptive(), "DBMIN-adaptive"},
		{NewDBMINTuned(), "DBMIN-tuned"},
		{core.NewDataAware(), "data-aware"},
	} {
		if c.p.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.p.Name(), c.want)
		}
	}
}

func TestBatchSize(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 1}, {5, 1}, {10, 1}, {11, 2}, {40, 4}, {95, 10}} {
		if got := batchSize(c.n); got != c.want {
			t.Errorf("batchSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func ExampleNewDBMINTuned() {
	fmt.Println(NewDBMINTuned().Name())
	// Output: DBMIN-tuned
}
