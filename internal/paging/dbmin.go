package paging

import (
	"errors"
	"fmt"

	"pangea/internal/core"
)

// ErrDBMINBlocked is returned when the sum of the desired locality set sizes
// exceeds the buffer pool: original DBMIN blocks new requests in this case
// (§3.2), which is how DBMIN-adaptive and DBMIN-1000 fail in Fig 3.
var ErrDBMINBlocked = errors.New("paging: DBMIN blocked: total desired locality set size exceeds pool")

// Sizer estimates the desired size (in pages) of one locality set, the way
// DBMIN's query locality set model derives a working-set budget per file
// instance. poolPages is the pool capacity expressed in this set's pages.
type Sizer func(s *core.SetSnapshot, poolPages int64) int64

// SizerFixed returns a sizer that assigns every set the same desired size,
// matching the paper's DBMIN-1 (n=1) and DBMIN-1000 (n=1000) strawmen.
func SizerFixed(n int64) Sizer {
	return func(*core.SetSnapshot, int64) int64 { return n }
}

// SizerAdaptive follows the QLSM estimation rules of Chou & DeWitt, with the
// reference pattern learned from the Pangea service attached to the set
// (§9.1.1, "the reference patterns are learned from Pangea-provided
// services"):
//
//   - straight sequential writing (sequential-write, concurrent-write with
//     no reader) needs a single page;
//   - looping sequential reading — the common read-after-write dataflow
//     pattern — wants the whole file resident, so the estimate is the set's
//     page count;
//   - random patterns (hash data) also want the whole working set resident.
//
// Because looping/random estimates equal the full set size, the total
// desired size can exceed the pool, and DBMIN blocks — exactly the failure
// mode in Fig 3.
func SizerAdaptive() Sizer {
	return func(s *core.SetSnapshot, _ int64) int64 {
		a := s.Attrs
		switch {
		case a.Reading == core.SequentialRead, a.Reading == core.RandomRead,
			a.Writing == core.RandomMutableWrite:
			n := s.TotalPages
			if n < 1 {
				n = 1
			}
			return n
		default:
			return 1
		}
	}
}

// SizerTuned is SizerAdaptive upper-bounded by the pool capacity: the
// paper's "tuned DBMIN" (§9.2.1) avoids blocking by capping each locality
// set size at the memory size.
func SizerTuned() Sizer {
	adaptive := SizerAdaptive()
	return func(s *core.SetSnapshot, poolPages int64) int64 {
		n := adaptive(s, poolPages)
		if n > poolPages {
			n = poolPages
		}
		return n
	}
}

// DBMIN implements the DBMIN buffer management strategy on top of Pangea's
// unified pool: each locality set has a desired size and a per-pattern
// replacement order; a set only gives up pages while it exceeds its desired
// size; and the policy blocks when the total desired size cannot fit.
type DBMIN struct {
	name  string
	sizer Sizer
	// block controls whether exceeding the pool is a hard failure (original
	// DBMIN) or is ignored (the tuned variant never triggers it by
	// construction, but the flag keeps the failure mode explicit).
	block bool
}

// NewDBMIN1 builds the DBMIN-1 baseline: every locality set size estimated
// as one page.
func NewDBMIN1() *DBMIN { return &DBMIN{name: "DBMIN-1", sizer: SizerFixed(1), block: true} }

// NewDBMIN1000 builds the DBMIN-1000 baseline: every locality set size
// estimated as 1000 pages.
func NewDBMIN1000() *DBMIN {
	return &DBMIN{name: "DBMIN-1000", sizer: SizerFixed(1000), block: true}
}

// NewDBMINAdaptive builds DBMIN with the QLSM size estimation.
func NewDBMINAdaptive() *DBMIN {
	return &DBMIN{name: "DBMIN-adaptive", sizer: SizerAdaptive(), block: true}
}

// NewDBMINTuned builds the non-blocking DBMIN variant with sizes capped at
// pool capacity.
func NewDBMINTuned() *DBMIN { return &DBMIN{name: "DBMIN-tuned", sizer: SizerTuned(), block: false} }

// NewDBMIN builds a DBMIN policy with a custom sizer.
func NewDBMIN(name string, sizer Sizer, block bool) *DBMIN {
	return &DBMIN{name: name, sizer: sizer, block: block}
}

// Name implements core.Policy.
func (d *DBMIN) Name() string { return d.name }

// SelectVictims implements core.Policy over the pool snapshot.
func (d *DBMIN) SelectVictims(view *core.PolicyView) ([]core.PageRef, error) {
	// Blocking check: if the sum of desired sizes (in bytes) exceeds the
	// pool, original DBMIN refuses to admit the request.
	if d.block {
		var want int64
		for _, s := range view.Sets {
			poolPages := view.Capacity / s.PageSize
			want += d.sizer(s, poolPages) * s.PageSize
		}
		if want > view.Capacity {
			return nil, fmt.Errorf("%w (desired %d bytes > pool %d bytes)", ErrDBMINBlocked, want, view.Capacity)
		}
	}

	// Choose the set with the largest excess over its desired size and take
	// a batch from it using the set's own pattern-derived order.
	var victim *core.SetSnapshot
	var victimExcess int64
	for _, s := range view.Sets {
		poolPages := view.Capacity / s.PageSize
		excess := int64(s.Resident) - d.sizer(s, poolPages)
		if excess > victimExcess && len(s.Evictable) > 0 {
			victim, victimExcess = s, excess
		}
	}
	if victim == nil {
		// No set exceeds its budget but memory is still short: fall back to
		// draining the set with the most evictable pages so allocation can
		// proceed (a unified pool has no reserved partitions to steal from).
		for _, s := range view.Sets {
			if n := len(s.Evictable); n > 0 && (victim == nil || n > len(victim.Evictable)) {
				victim = s
			}
		}
	}
	if victim == nil {
		return nil, nil
	}
	batch := victim.VictimBatch()
	if victimExcess > 0 && int64(len(batch)) > victimExcess {
		batch = batch[:victimExcess]
	}
	return batch, nil
}
