package kmeans

import (
	"math"
	"testing"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/placement"
	"pangea/internal/query"
)

const testKey = "kmeans-test-key"

func startExec(t *testing.T, nodes int, mem int64) *query.Executor {
	t.Helper()
	mgr, err := cluster.NewManager("127.0.0.1:0", testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mgr.Close() })
	cl := cluster.NewClient(mgr.Addr(), testKey)
	var workers []*cluster.Worker
	for i := 0; i < nodes; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: testKey, Memory: mem, DiskDir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = w.Close() })
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	return query.NewExecutor(cl, workers, 2)
}

func loadPoints(t *testing.T, e *query.Executor, name string, pts [][]byte) {
	t.Helper()
	if err := e.Client.CreateSet(name, 128<<10, uint8(core.WriteThrough)); err != nil {
		t.Fatal(err)
	}
	if err := placement.DispatchRandom(e.Client, e.Addrs, name, pts); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodePoint(t *testing.T) {
	p := []float64{1.5, -2.25, 1e9, 0}
	rec := EncodePoint(p)
	got := make([]float64, 4)
	DecodePoint(rec, got)
	for i := range p {
		if got[i] != p[i] {
			t.Errorf("dim %d: %v != %v", i, got[i], p[i])
		}
	}
}

func TestGeneratePointsDeterministic(t *testing.T) {
	a := GeneratePoints(100, 5, 3, 9)
	b := GeneratePoints(100, 5, 3, 9)
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestRunConverges(t *testing.T) {
	e := startExec(t, 2, 32<<20)
	const n, dim, k = 3000, 4, 3
	pts := GeneratePoints(n, dim, k, 123)
	loadPoints(t, e, "points", pts)
	model, err := Run(e, "points", Config{K: k, Dim: dim, Iterations: 5, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer Cleanup(e, "points")
	if len(model.Centroids) != k {
		t.Fatalf("centroids = %d, want %d", len(model.Centroids), k)
	}
	var total int64
	for _, c := range model.Assignments {
		total += c
	}
	if total != n {
		t.Errorf("assigned %d points, want %d", total, n)
	}
	if len(model.IterTimes) != 5 {
		t.Errorf("iteration timings = %d, want 5", len(model.IterTimes))
	}
	// Quality: mean distance to the nearest centroid must be far below the
	// data spread (points are drawn ±5 around centres spread over [0,100]).
	assertQuality(t, e, model, dim)
}

func assertQuality(t *testing.T, e *query.Executor, model *Model, dim int) {
	t.Helper()
	var sum float64
	var cnt int64
	for node := range e.Workers {
		s, err := e.Set(node, "points")
		if err != nil {
			t.Fatal(err)
		}
		rows, err := query.Collect(query.Scan(s, 1))
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, dim)
		for _, rec := range rows {
			DecodePoint(rec, p)
			best := math.Inf(1)
			for _, c := range model.Centroids {
				var d float64
				for j := range p {
					d += (p[j] - c[j]) * (p[j] - c[j])
				}
				if d < best {
					best = d
				}
			}
			sum += math.Sqrt(best)
			cnt++
		}
	}
	if mean := sum / float64(cnt); mean > 10 {
		t.Errorf("mean distance to centroid %.2f; clustering failed", mean)
	}
}

// TestRunWithPagingPressure shrinks worker memory so the norms set spills:
// the run must still complete and assign every point.
func TestRunWithPagingPressure(t *testing.T) {
	e := startExec(t, 2, 600<<10) // tiny pools
	const n, dim, k = 20000, 4, 2
	pts := GeneratePoints(n, dim, k, 77)
	loadPoints(t, e, "points", pts)
	model, err := Run(e, "points", Config{K: k, Dim: dim, Iterations: 3, Threads: 2, PageSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer Cleanup(e, "points")
	var spills int64
	for _, w := range e.Workers {
		spills += w.Pool().Stats().Evictions.Load()
	}
	if spills == 0 {
		t.Error("expected paging under memory pressure")
	}
	var total int64
	for _, c := range model.Assignments {
		total += c
	}
	if total != n {
		t.Errorf("assigned %d points, want %d", total, n)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	e := startExec(t, 1, 8<<20)
	if _, err := Run(e, "missing", Config{}); err == nil {
		t.Error("zero config must be rejected")
	}
}
