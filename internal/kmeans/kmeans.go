// Package kmeans implements the paper's k-means distributed benchmark
// (§9.1.1), mirroring the Spark MLlib structure it compares against: an
// initialization step that computes point norms and samples the starting
// centroids, followed by Lloyd iterations that broadcast the centroids and
// aggregate per-cluster sums.
//
// On Pangea the input points are user data in a write-through locality set;
// the points-with-norms dataset produced by initialization is transient job
// data in a write-back set (exactly the two sets the paper configures); and
// per-iteration cluster sums flow through the hash service. When the
// points-with-norms working set exceeds the buffer pool, the paging system
// spills and reloads it under the configured policy — the regime where
// Fig 3 separates the paging strategies.
package kmeans

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/query"
	"pangea/internal/services"
)

// EncodePoint packs a point as little-endian float64s.
func EncodePoint(p []float64) []byte {
	out := make([]byte, 8*len(p))
	for i, v := range p {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodePoint unpacks an encoded point into dst (sized to the dimension).
func DecodePoint(rec []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[8*i:]))
	}
}

// GeneratePoints builds n deterministic dim-dimensional points drawn around
// k latent cluster centres, encoded for loading.
func GeneratePoints(n, dim, k int, seed uint64) [][]byte {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	f64 := func() float64 { return float64(next()>>11) / (1 << 53) }
	centres := make([][]float64, k)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for j := range centres[c] {
			centres[c][j] = f64() * 100
		}
	}
	out := make([][]byte, n)
	p := make([]float64, dim)
	for i := 0; i < n; i++ {
		c := centres[next()%uint64(k)]
		for j := range p {
			p[j] = c[j] + (f64()-0.5)*10
		}
		out[i] = EncodePoint(p)
	}
	return out
}

// Config parameterises one run.
type Config struct {
	K          int
	Dim        int
	Iterations int
	Threads    int
	// PageSize is the page size for the transient points-with-norms set
	// (the paper uses 256MB splits; MB-scale here).
	PageSize int64
}

// Model is the result of a run, with the per-phase timings Fig 3 plots.
type Model struct {
	Centroids [][]float64
	InitTime  time.Duration
	IterTimes []time.Duration
	// Assignments counts points per cluster after the last iteration.
	Assignments []int64
}

// TotalTime sums initialization and iteration latencies.
func (m *Model) TotalTime() time.Duration {
	t := m.InitTime
	for _, it := range m.IterTimes {
		t += it
	}
	return t
}

// normsSetName is the per-run transient dataset of points with norms.
func normsSetName(input string) string { return input + ":norms" }

// Run executes distributed k-means over the executor. inputSet must exist
// on every worker and hold encoded points of cfg.Dim dimensions.
func Run(e *query.Executor, inputSet string, cfg Config) (*Model, error) {
	if cfg.K < 1 || cfg.Dim < 1 || cfg.Iterations < 1 {
		return nil, fmt.Errorf("kmeans: invalid config %+v", cfg)
	}
	if cfg.Threads < 1 {
		cfg.Threads = 2
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 256 << 10
	}
	normsSet := normsSetName(inputSet)
	recSize := 8 * (cfg.Dim + 1)

	// --- Initialization: compute norms, materialize transient job data,
	// sample initial centroids (first K distinct points by node order).
	start := time.Now()
	centSamples := make([][][]float64, len(e.Workers))
	err := e.Parallel(func(node int, w *cluster.Worker) error {
		in, err := e.Set(node, inputSet)
		if err != nil {
			return err
		}
		out, err := w.Pool().CreateSet(core.SetSpec{
			Name:       normsSet,
			PageSize:   cfg.PageSize,
			Durability: core.WriteBack,
		})
		if err != nil {
			return err
		}
		wtr := services.NewSeqWriter(out)
		var mu sync.Mutex
		rec := make([]byte, recSize)
		point := make([]float64, cfg.Dim)
		err = (query.ScanSpec{Set: in, Threads: cfg.Threads}).Run(func(_ int, raw []byte) error {
			mu.Lock()
			defer mu.Unlock()
			DecodePoint(raw, point)
			var norm float64
			for _, v := range point {
				norm += v * v
			}
			binary.LittleEndian.PutUint64(rec[0:8], math.Float64bits(norm))
			copy(rec[8:], raw)
			if len(centSamples[node]) < cfg.K {
				centSamples[node] = append(centSamples[node], append([]float64(nil), point...))
			}
			return wtr.Add(rec)
		})
		if cerr := wtr.Close(); err == nil {
			err = cerr
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("kmeans: initialization: %w", err)
	}
	var centroids [][]float64
	for _, samples := range centSamples {
		for _, s := range samples {
			if len(centroids) < cfg.K {
				centroids = append(centroids, s)
			}
		}
	}
	if len(centroids) < cfg.K {
		return nil, fmt.Errorf("kmeans: only %d points for %d clusters", len(centroids), cfg.K)
	}
	model := &Model{InitTime: time.Since(start)}

	// --- Lloyd iterations.
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := time.Now()
		sums, counts, err := assignAndSum(e, normsSet, centroids, cfg)
		if err != nil {
			return nil, fmt.Errorf("kmeans: iteration %d: %w", iter, err)
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				continue // empty cluster keeps its centroid
			}
			for j := 0; j < cfg.Dim; j++ {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		model.IterTimes = append(model.IterTimes, time.Since(iterStart))
		model.Assignments = counts
	}
	model.Centroids = centroids
	return model, nil
}

// assignAndSum performs one iteration: centroids are broadcast (closure
// capture models the broadcast service for the co-located computation), and
// each node aggregates per-cluster coordinate sums through the hash
// service; the coordinator merges the per-node partials.
func assignAndSum(e *query.Executor, normsSet string, centroids [][]float64, cfg Config) ([][]float64, []int64, error) {
	// Precompute centroid norms for the MLlib-style fast distance:
	// ||x−c||² = ||x||² − 2x·c + ||c||².
	cNorm := make([]float64, len(centroids))
	for c, cen := range centroids {
		for _, v := range cen {
			cNorm[c] += v * v
		}
	}

	valSize := 8 * (cfg.Dim + 1) // coordinate sums + count
	spec := query.AggSpec{
		Key:     func(row query.Row) []byte { return row[:4] }, // cluster id
		ValSize: valSize,
		Init: func(row query.Row, val []byte) {
			copy(val, row[4:]) // pre-summed single-point contribution
		},
		Combine: func(dst, src []byte) {
			for i := 0; i+8 <= valSize; i += 8 {
				a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
				b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
				binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(a+b))
			}
		},
	}

	merged, err := e.DistributedAggregate("kmeans", func(node int) query.Iter {
		return func(emit func(query.Row) error) error {
			set, err := e.Set(node, normsSet)
			if err != nil {
				return err
			}
			return (query.ScanSpec{Set: set, Threads: cfg.Threads}).Run(func(_ int, rec []byte) error {
				norm := math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8]))
				best, bestDist := 0, math.Inf(1)
				for c, cen := range centroids {
					dot := 0.0
					for j := 0; j < cfg.Dim; j++ {
						x := math.Float64frombits(binary.LittleEndian.Uint64(rec[8+8*j:]))
						dot += x * cen[j]
					}
					d := norm - 2*dot + cNorm[c]
					if d < bestDist {
						best, bestDist = c, d
					}
				}
				out := make(query.Row, 4+valSize)
				binary.LittleEndian.PutUint32(out[0:4], uint32(best))
				copy(out[4:4+8*cfg.Dim], rec[8:])
				binary.LittleEndian.PutUint64(out[4+8*cfg.Dim:], math.Float64bits(1))
				return emit(out)
			})
		}
	}, spec)
	if err != nil {
		return nil, nil, err
	}

	sums := make([][]float64, cfg.K)
	counts := make([]int64, cfg.K)
	for c := range sums {
		sums[c] = make([]float64, cfg.Dim)
	}
	for k, v := range merged {
		c := int(binary.LittleEndian.Uint32([]byte(k)))
		for j := 0; j < cfg.Dim; j++ {
			sums[c][j] = math.Float64frombits(binary.LittleEndian.Uint64(v[8*j:]))
		}
		counts[c] = int64(math.Float64frombits(binary.LittleEndian.Uint64(v[8*cfg.Dim:])))
	}
	return sums, counts, nil
}

// Cleanup drops the transient norms set after a run.
func Cleanup(e *query.Executor, inputSet string) {
	e.DropEverywhere(normsSetName(inputSet))
}
