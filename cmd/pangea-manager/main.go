// Command pangea-manager runs the Pangea manager node: the light-weight
// coordinator that registers workers, serves the locality set catalog, and
// hosts the statistics database of replica groups (paper §3.3).
//
// Usage:
//
//	pangea-manager -listen :7700 -key <private-key>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pangea/internal/cluster"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7700", "address to listen on")
		key    = flag.String("key", "", "cluster private key (required)")
	)
	flag.Parse()
	if *key == "" {
		fmt.Fprintln(os.Stderr, "pangea-manager: -key is required (the cluster's private key)")
		os.Exit(2)
	}
	mgr, err := cluster.NewManager(*listen, *key)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pangea-manager:", err)
		os.Exit(1)
	}
	fmt.Printf("pangea-manager listening on %s\n", mgr.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = mgr.Close()
}
