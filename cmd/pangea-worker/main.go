// Command pangea-worker runs one Pangea worker node: the storage process
// owning the node's unified buffer pool, file system and services, serving
// the data-proxy protocol (paper §3.3, Fig 2). It registers itself with the
// manager at startup.
//
// Usage:
//
//	pangea-worker -listen :7801 -manager 127.0.0.1:7700 -key <private-key> \
//	    -memory 268435456 -dir /data/pangea -disks 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"pangea/internal/cluster"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "address to listen on")
		manager = flag.String("manager", "", "manager address (required)")
		key     = flag.String("key", "", "cluster private key (required)")
		memory  = flag.Int64("memory", 256<<20, "buffer pool size in bytes")
		dir     = flag.String("dir", "", "directory for the node's drives (required)")
		disks   = flag.Int("disks", 1, "number of simulated drives")
	)
	flag.Parse()
	if *manager == "" || *key == "" || *dir == "" {
		fmt.Fprintln(os.Stderr, "pangea-worker: -manager, -key and -dir are required")
		os.Exit(2)
	}
	w, err := cluster.NewWorker(*listen, cluster.WorkerConfig{
		PrivateKey: *key,
		Memory:     *memory,
		DiskDir:    *dir,
		Disks:      *disks,
		Logf:       log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pangea-worker:", err)
		os.Exit(1)
	}
	cl := cluster.NewClient(*manager, *key)
	id, err := cl.RegisterWorker(w.Addr())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pangea-worker: register:", err)
		os.Exit(1)
	}
	fmt.Printf("pangea-worker %d listening on %s (pool %d bytes, %d disks)\n", id, w.Addr(), *memory, *disks)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	_ = w.Close()
}
