package main

// The bench-regression gate: CI renders `go test -bench` output to a JSON
// artifact per push (-render) and fails the build when a benchmark's ns/op
// regresses past a threshold against the previous run's artifact, or the
// committed bench_baseline.json when no artifact is reachable (-gate).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// BenchRow is one benchmark result.
type BenchRow struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// BenchFile is the BENCH_pool.json artifact schema.
type BenchFile struct {
	Benchmarks []BenchRow `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkSpillParallel/drives=4-8   2   78011343 ns/op   215.06 MB/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op`)

// procSuffix is the trailing -GOMAXPROCS that `go test` appends to every
// benchmark name. It is stripped at parse time: CI runners (and the
// committed baseline) differ in core count, and keeping the suffix would
// make every cross-machine comparison silently skip as "unmatched".
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchText extracts benchmark rows from `go test -bench` output.
// Repeated names (e.g. from -count or concatenated runs) keep the last
// occurrence.
func parseBenchText(r io.Reader) ([]BenchRow, error) {
	byName := map[string]BenchRow{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		if _, seen := byName[name]; !seen {
			order = append(order, name)
		}
		byName[name] = BenchRow{Name: name, Iterations: iters, NsPerOp: ns}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rows := make([]BenchRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, byName[name])
	}
	return rows, nil
}

func readBenchJSON(path string) ([]BenchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f.Benchmarks, nil
}

func writeBenchJSON(w io.Writer, rows []BenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BenchFile{Benchmarks: rows})
}

// gateResult is one benchmark's verdict from gate.
type gateResult struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	Ratio      float64 // cur/base
	Regression bool
}

// gate compares current ns/op against a baseline. A benchmark regresses
// when its ns/op grew by more than threshold (0.25 = +25%). Benchmarks
// present on only one side are reported but never fail the gate — CI would
// otherwise break on every benchmark added or retired.
func gate(baseline, current []BenchRow, threshold float64) (results []gateResult, onlyBase, onlyCur []string) {
	// Normalize both sides' names (older artifacts — e.g. ones rendered
	// before the Go tool existed — may still carry the -GOMAXPROCS
	// suffix); without this the first gated run would match nothing and
	// pass vacuously.
	norm := func(rows []BenchRow) []BenchRow {
		out := make([]BenchRow, len(rows))
		for i, r := range rows {
			r.Name = procSuffix.ReplaceAllString(r.Name, "")
			out[i] = r
		}
		return out
	}
	baseline, current = norm(baseline), norm(current)
	base := map[string]BenchRow{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	seen := map[string]bool{}
	for _, cur := range current {
		b, ok := base[cur.Name]
		if !ok {
			onlyCur = append(onlyCur, cur.Name)
			continue
		}
		seen[cur.Name] = true
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		results = append(results, gateResult{
			Name:       cur.Name,
			BaseNs:     b.NsPerOp,
			CurNs:      cur.NsPerOp,
			Ratio:      ratio,
			Regression: ratio > 1+threshold,
		})
	}
	for _, b := range baseline {
		if !seen[b.Name] {
			onlyBase = append(onlyBase, b.Name)
		}
	}
	sort.Strings(onlyBase)
	sort.Strings(onlyCur)
	return results, onlyBase, onlyCur
}

// runGate prints a comparison report to w and reports how many benchmarks
// regressed past the threshold.
func runGate(w io.Writer, baselinePath, currentPath string, threshold float64) (regressions int, err error) {
	baseline, err := readBenchJSON(baselinePath)
	if err != nil {
		return 0, err
	}
	current, err := readBenchJSON(currentPath)
	if err != nil {
		return 0, err
	}
	results, onlyBase, onlyCur := gate(baseline, current, threshold)
	fmt.Fprintf(w, "bench gate: %d benchmarks compared, threshold +%.0f%%\n", len(results), threshold*100)
	for _, r := range results {
		verdict := "ok"
		if r.Regression {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-60s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n",
			r.Name, r.BaseNs, r.CurNs, (r.Ratio-1)*100, verdict)
	}
	for _, name := range onlyBase {
		fmt.Fprintf(w, "  %-60s only in baseline (skipped)\n", name)
	}
	for _, name := range onlyCur {
		fmt.Fprintf(w, "  %-60s only in current run (skipped)\n", name)
	}
	return regressions, nil
}
