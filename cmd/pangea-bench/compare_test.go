package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: pangea
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPoolParallel-8         	 1000000	      1042 ns/op
BenchmarkSpillParallel/drives=1-8 	       2	 227232485 ns/op	  73.83 MB/s
BenchmarkSpillParallel/drives=4-8 	       2	  78011343 ns/op	 215.06 MB/s
PASS
ok  	pangea	1.384s
`

func TestParseBenchText(t *testing.T) {
	rows, err := parseBenchText(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3", len(rows))
	}
	if rows[0].Name != "BenchmarkPoolParallel" || rows[0].NsPerOp != 1042 || rows[0].Iterations != 1000000 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if rows[2].Name != "BenchmarkSpillParallel/drives=4" || rows[2].NsPerOp != 78011343 {
		t.Fatalf("row 2 = %+v", rows[2])
	}
}

func TestParseBenchTextKeepsLastDuplicate(t *testing.T) {
	text := "BenchmarkX-8 10 100 ns/op\nBenchmarkX-8 10 200 ns/op\n"
	rows, err := parseBenchText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].NsPerOp != 200 {
		t.Fatalf("rows = %+v, want one row at 200 ns/op", rows)
	}
}

func writeArtifact(t *testing.T, dir, name string, rows []BenchRow) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var buf bytes.Buffer
	if err := writeBenchJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateFailsOnInjectedRegression is the acceptance check for the CI
// gate: a >25% ns/op regression must fail, smaller drift must not.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", []BenchRow{
		{Name: "BenchmarkPoolParallel-8", Iterations: 100, NsPerOp: 1000},
		{Name: "BenchmarkSpillParallel/drives=4-8", Iterations: 2, NsPerOp: 80e6},
	})

	// +30% on one benchmark: one regression.
	cur := writeArtifact(t, dir, "cur.json", []BenchRow{
		{Name: "BenchmarkPoolParallel-8", Iterations: 100, NsPerOp: 1300},
		{Name: "BenchmarkSpillParallel/drives=4-8", Iterations: 2, NsPerOp: 80e6},
	})
	var out bytes.Buffer
	n, err := runGate(&out, base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", out.String())
	}

	// +20% stays under the 25% threshold: clean.
	cur = writeArtifact(t, dir, "cur2.json", []BenchRow{
		{Name: "BenchmarkPoolParallel-8", Iterations: 100, NsPerOp: 1200},
		{Name: "BenchmarkSpillParallel/drives=4-8", Iterations: 2, NsPerOp: 60e6},
	})
	out.Reset()
	if n, err = runGate(&out, base, cur, 0.25); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", n, out.String())
	}
}

func TestGateSkipsUnmatchedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", []BenchRow{
		{Name: "BenchmarkRetired-8", NsPerOp: 50},
		{Name: "BenchmarkShared-8", NsPerOp: 100},
	})
	cur := writeArtifact(t, dir, "cur.json", []BenchRow{
		{Name: "BenchmarkShared-8", NsPerOp: 100},
		{Name: "BenchmarkBrandNew-8", NsPerOp: 1e9},
	})
	var out bytes.Buffer
	n, err := runGate(&out, base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("unmatched benchmarks failed the gate: %d regressions\n%s", n, out.String())
	}
	for _, want := range []string{"only in baseline", "only in current run"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRenderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench.json")
	if err := renderMain(in, out); err != nil {
		t.Fatal(err)
	}
	rows, err := readBenchJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1].Name != "BenchmarkSpillParallel/drives=1" {
		t.Fatalf("round-trip rows = %+v", rows)
	}
}
