// Command pangea-bench regenerates the paper's tables and figures (§9) on
// the simulated substrate.
//
// Usage:
//
//	pangea-bench -exp fig3          # one experiment
//	pangea-bench -exp all           # everything, in the paper's order
//	pangea-bench -exp fig7 -quick   # CI-sized workload
package main

import (
	"flag"
	"fmt"
	"os"

	"pangea/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "all", "experiment id (fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 tab2 tab3 tab4 s7 s5) or 'all'")
		quick = flag.Bool("quick", false, "run the CI-sized workloads")
		dir   = flag.String("dir", "", "scratch directory for simulated drives (default: a temp dir)")
	)
	flag.Parse()

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "pangea-bench-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(scratch)
	}
	o := exp.Options{Quick: *quick, Dir: scratch}

	run := func(id string, fn exp.RunFunc) {
		t, err := fn(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		t.Print(os.Stdout)
	}
	if *which == "all" {
		for _, e := range exp.Registry {
			run(e.ID, e.Fn)
		}
		return
	}
	for _, e := range exp.Registry {
		if e.ID == *which {
			run(e.ID, e.Fn)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; known:\n", *which)
	for _, e := range exp.Registry {
		fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.ID, e.Doc)
	}
	os.Exit(2)
}
