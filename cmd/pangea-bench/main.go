// Command pangea-bench regenerates the paper's tables and figures (§9) on
// the simulated substrate, and doubles as CI's bench-regression gate.
//
// Usage:
//
//	pangea-bench -exp fig3          # one experiment
//	pangea-bench -exp all           # everything, in the paper's order
//	pangea-bench -exp fig7 -quick   # CI-sized workload
//
//	pangea-bench -render bench.txt -o BENCH_pool.json
//	    parse `go test -bench` output into the BENCH_pool artifact JSON
//	pangea-bench -gate -baseline prev.json -current BENCH_pool.json
//	    exit 1 when any benchmark's ns/op regressed past -threshold
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pangea/internal/exp"
)

// expIDs lists every registered experiment for the -exp usage string, so the
// help text can't drift from the registry.
func expIDs() string {
	ids := make([]string, len(exp.Registry))
	for i, e := range exp.Registry {
		ids[i] = e.ID
	}
	return strings.Join(ids, " ")
}

func main() {
	var (
		which = flag.String("exp", "all", "experiment id ("+expIDs()+") or 'all'")
		quick = flag.Bool("quick", false, "run the CI-sized workloads")
		dir   = flag.String("dir", "", "scratch directory for simulated drives (default: a temp dir)")

		render    = flag.String("render", "", "parse `go test -bench` output from this file ('-' for stdin) into artifact JSON")
		out       = flag.String("o", "", "with -render: write the JSON here (default stdout)")
		gateMode  = flag.Bool("gate", false, "compare -current against -baseline and fail on ns/op regressions")
		baseline  = flag.String("baseline", "", "with -gate: baseline artifact JSON (previous run or committed bench_baseline.json)")
		current   = flag.String("current", "", "with -gate: this run's artifact JSON")
		threshold = flag.Float64("threshold", 0.25, "with -gate: allowed ns/op growth before failing (0.25 = +25%)")
	)
	flag.Parse()

	if *render != "" {
		if err := renderMain(*render, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *gateMode {
		if *baseline == "" || *current == "" {
			fmt.Fprintln(os.Stderr, "-gate needs both -baseline and -current")
			os.Exit(2)
		}
		regressions, err := runGate(os.Stdout, *baseline, *current, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "bench gate: %d benchmark(s) regressed more than %.0f%%\n", regressions, *threshold*100)
			os.Exit(1)
		}
		return
	}

	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "pangea-bench-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(scratch)
	}
	o := exp.Options{Quick: *quick, Dir: scratch}

	run := func(id string, fn exp.RunFunc) {
		t, err := fn(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		t.Print(os.Stdout)
	}
	if *which == "all" {
		for _, e := range exp.Registry {
			run(e.ID, e.Fn)
		}
		return
	}
	for _, e := range exp.Registry {
		if e.ID == *which {
			run(e.ID, e.Fn)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; known:\n", *which)
	for _, e := range exp.Registry {
		fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.ID, e.Doc)
	}
	os.Exit(2)
}

// renderMain parses bench text from path (or stdin for "-") and writes the
// artifact JSON to outPath (or stdout when empty).
func renderMain(path, outPath string) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	rows, err := parseBenchText(in)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no benchmark result lines found", path)
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeBenchJSON(w, rows)
}
