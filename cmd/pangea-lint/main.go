// Command pangea-lint runs the Pangea invariant analyzers (pinleak,
// lockorder, gaugepair, errdrop — see internal/lint) over Go packages.
//
// Standalone mode loads and checks packages directly:
//
//	go run ./cmd/pangea-lint ./...
//
// It exits 1 if any diagnostic is reported, 0 on a clean tree.
//
// The binary also speaks the `go vet -vettool` unit-checker protocol, so
// the same analyzers run under the build cache with per-package units:
//
//	go build -o /tmp/pangea-lint ./cmd/pangea-lint
//	go vet -vettool=/tmp/pangea-lint ./...
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pangea/internal/lint"
)

// printVersion answers the vet driver's -V=full probe. cmd/go requires
// `<tool> version devel ... buildID=<id>` and uses the ID as the tool's
// build-cache key, so we hash our own executable: rebuilding the linter
// invalidates cached vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(exe); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel pangea-analyzers buildID=%x\n",
		filepath.Base(os.Args[0]), h.Sum(nil))
}

func main() {
	// The vet driver probes tools with -V=full and -flags before handing
	// them a JSON config file; detect those shapes before normal flag
	// parsing (go vet also prepends its own flag set).
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0])
		return
	}

	fs := flag.NewFlagSet("pangea-lint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pangea-lint [-only a,b] packages...\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "pangea-lint: no analyzers match -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pangea-lint: %v\n", err)
		os.Exit(2)
	}
	found := false
	for _, pkg := range pkgs {
		if strings.Contains(pkg.PkgPath, "/testdata/") {
			continue
		}
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pangea-lint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			found = true
			fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if found {
		os.Exit(1)
	}
}
