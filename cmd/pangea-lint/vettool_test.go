package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLintTool compiles pangea-lint into dir and returns the binary path.
func buildLintTool(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pangea-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pangea-lint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolProtocol drives the binary through the real `go vet -vettool`
// driver: the probe handshake, a clean run over the shipped tree, and a
// firing run over a scratch package that violates the errdrop invariant.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet over the module; skipped in -short")
	}
	bin := buildLintTool(t, t.TempDir())

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full probe: %v", err)
	}
	if !strings.Contains(string(out), "version") {
		t.Fatalf("-V=full output %q lacks a version line", out)
	}

	// Clean run: the shipped tree must lint clean through the vet driver
	// exactly as it does in standalone mode.
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = repoRoot(t)
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean tree failed: %v\n%s", err, out)
	}

	// Firing run: a scratch package inside the module that drops a
	// pfs.PagedFile.Close error, which the default errdrop rules flag.
	scratch := filepath.Join(repoRoot(t), "vettoolscratch_test_pkg")
	if err := os.MkdirAll(scratch, 0o777); err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	src := `package vettoolscratch

import "pangea/internal/pfs"

func drop(pf *pfs.PagedFile) {
	pf.Close()
}
`
	if err := os.WriteFile(filepath.Join(scratch, "scratch.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vet = exec.Command("go", "vet", "-vettool="+bin, "./vettoolscratch_test_pkg")
	vet.Dir = repoRoot(t)
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	if err := vet.Run(); err == nil {
		t.Fatalf("go vet -vettool did not fail on the scratch package; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "errdrop") {
		t.Fatalf("vet output lacks the errdrop diagnostic:\n%s", stderr.String())
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/pangea-lint -> repo root
}
