package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"pangea/internal/lint"
)

// vetConfig mirrors the JSON configuration file cmd/go's vet driver writes
// for each package unit (the x/tools unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package unit described by a vet config file and
// exits with the protocol's status codes: 0 clean, 2 diagnostics found,
// 1 on tool failure.
func runVetUnit(cfgPath string) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pangea-lint: %v\n", err)
		os.Exit(1)
	}
	// The driver expects a facts file for every unit, dependencies
	// included, before it will run downstream units. The Pangea analyzers
	// are fact-free, so an empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pangea-lint: writing facts: %v\n", err)
			os.Exit(1)
		}
	}
	if cfg.VetxOnly {
		return
	}
	// The vet driver also hands us test units (the test-augmented package
	// variant and the external _test package). The Pangea invariants are
	// scoped to production code — tests drop cleanup errors and take
	// shortcuts deliberately, and standalone mode only loads non-test
	// files — so skip any unit that compiles _test.go files.
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			return
		}
	}

	pkg, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fmt.Fprintf(os.Stderr, "pangea-lint: %s: %v\n", cfg.ImportPath, err)
		os.Exit(1)
	}
	diags, err := lint.RunAnalyzers(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pangea-lint: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return &cfg, nil
}

// typecheckUnit parses and type-checks the unit from the files and export
// data the vet driver supplied.
func typecheckUnit(cfg *vetConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	pkg := &lint.Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files}
	var firstErr error
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	if firstErr != nil {
		return nil, firstErr
	}
	return pkg, nil
}
