// Quickstart: the locality set abstraction on a single node.
//
// This example mirrors the paper's §3.2 walkthrough: create a locality set,
// add objects through the sequential write service, scan them with
// concurrent page iterators, shuffle them into partitions, and aggregate
// key-value pairs through the hash service — all inside one unified buffer
// pool whose paging is handled by the data-aware policy.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/services"
)

func main() {
	dir, err := os.MkdirTemp("", "pangea-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One node: a disk array and a unified buffer pool over shared memory.
	arr, err := disk.NewArray(dir, 1, disk.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	pool, err := core.NewPool(core.PoolConfig{Memory: 8 << 20, Array: arr})
	if err != nil {
		log.Fatal(err)
	}

	// createSet("data") — user data is write-through.
	myData, err := pool.CreateSet(core.SetSpec{
		Name: "data", PageSize: 64 << 10, Durability: core.WriteThrough,
	})
	if err != nil {
		log.Fatal(err)
	}

	// addObject / addData — sequential write service.
	w := services.NewSeqWriter(myData)
	for i := 0; i < 10000; i++ {
		if err := w.Add([]byte(fmt.Sprintf("object-%05d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d objects into %q (%d pages, attrs %v writing)\n",
		w.Count(), myData.Name(), myData.NumPages(), myData.Attrs().Writing)

	// getPageIterators + runWork — concurrent sequential read.
	var scanned atomic.Int64
	if err := services.ScanSet(myData, 4, func(thread int, rec []byte) error {
		scanned.Add(1)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d objects with 4 worker threads\n", scanned.Load())

	// Shuffle service: one locality set per partition, virtual shuffle
	// buffers let concurrent writers share pages.
	shuffled, err := services.NewShuffle(pool, "shuffled", 4, 256<<10, 32<<10)
	if err != nil {
		log.Fatal(err)
	}
	bufs := shuffled.Writer()
	if err := services.ScanSet(myData, 1, func(_ int, rec []byte) error {
		part := int(rec[len(rec)-1]) % shuffled.Partitions()
		return bufs[part].Add(rec)
	}); err != nil {
		log.Fatal(err)
	}
	if err := services.CloseWriters(bufs); err != nil {
		log.Fatal(err)
	}
	if err := shuffled.Close(); err != nil {
		log.Fatal(err)
	}
	for p := 0; p < shuffled.Partitions(); p++ {
		var n int
		if err := shuffled.ReadPartition(p, 1, func([]byte) error { n++; return nil }); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partition %d holds %d objects\n", p, n)
	}

	// Hash service: virtual hash buffer with page-local tables.
	aggSet, err := pool.CreateSet(core.SetSpec{Name: "agg", PageSize: 64 << 10})
	if err != nil {
		log.Fatal(err)
	}
	h, err := services.NewInt64HashBuffer(aggSet, 4, services.Sum)
	if err != nil {
		log.Fatal(err)
	}
	if err := services.ScanSet(myData, 1, func(_ int, rec []byte) error {
		key := rec[len(rec)-2:] // group objects by their last two digits
		return h.Upsert(key, 1)
	}); err != nil {
		log.Fatal(err)
	}
	if err := h.Close(); err != nil {
		log.Fatal(err)
	}
	res, err := h.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hash aggregation produced %d groups\n", len(res))

	st := pool.Stats()
	fmt.Printf("pool: %d evictions, %d spills, %d loads, %d write-through flushes\n",
		st.Evictions.Load(), st.Spills.Load(), st.Loads.Load(), st.FlushWrites.Load())
}
