// TPC-H over heterogeneous replicas (paper §9.1.2).
//
// Generates a small TPC-H database, loads it onto an in-process cluster,
// builds the paper's replicas (lineitem by l_orderkey and l_partkey, orders
// by o_orderkey and o_custkey, part by p_partkey), and runs the nine
// benchmark queries twice: with the query scheduler selecting
// co-partitioned replicas through the statistics service, and with runtime
// repartitioning — printing the speedup of the replica-driven plans.
//
// Run: go run ./examples/tpch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pangea/internal/cluster"
	"pangea/internal/query"
	"pangea/internal/tpch"
)

const key = "example-key"

func main() {
	dir, err := os.MkdirTemp("", "pangea-tpch-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	mgr, err := cluster.NewManager("127.0.0.1:0", key)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	cl := cluster.NewClient(mgr.Addr(), key)
	var workers []*cluster.Worker
	for i := 0; i < 3; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: key, Memory: 48 << 20,
			DiskDir: filepath.Join(dir, fmt.Sprintf("w%d", i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
	}
	e := query.NewExecutor(cl, workers, 2)

	const sf = 0.005
	d := tpch.Generate(sf, 7)
	fmt.Printf("generated TPC-H scale %.3f: %v rows, %.1f MiB\n",
		sf, d.Counts(), float64(d.TotalBytes())/(1<<20))
	if err := tpch.Load(e, d, 256<<10); err != nil {
		log.Fatal(err)
	}
	groups, err := tpch.BuildReplicas(e, 256<<10)
	if err != nil {
		log.Fatal(err)
	}
	for table, g := range groups {
		fmt.Printf("replicas of %s: %d members, %d colliding objects (%.2f%%)\n",
			table, len(g.Members), g.NumColliding, 100*g.CollidingRatio())
	}

	withReplicas := tpch.NewRunner(e, 2, true)
	repartition := tpch.NewRunner(e, 2, false)
	fmt.Printf("\n%-5s %-14s %-16s %s\n", "query", "replicas (ms)", "repartition (ms)", "speedup")
	for _, q := range tpch.QueryNames {
		start := time.Now()
		a, err := withReplicas.Run(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		ta := time.Since(start)
		start = time.Now()
		b, err := repartition.Run(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		tb := time.Since(start)
		if err := tpch.ResultsEqual(a, b, 1e-9); err != nil {
			log.Fatalf("%s: plans disagree: %v", q, err)
		}
		fmt.Printf("%-5s %-14.1f %-16.1f %.1fx\n", q,
			float64(ta.Microseconds())/1000, float64(tb.Microseconds())/1000,
			float64(tb)/float64(ta))
	}
}
