// Distributed k-means on a Pangea deployment (paper §9.1.1).
//
// Spins up an in-process cluster of three workers, loads points as
// write-through user data, and runs the MLlib-style computation: norm
// precompute into a transient write-back set, then Lloyd iterations through
// the hash service — the workload of Fig 3.
//
// Run: go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pangea/internal/cluster"
	"pangea/internal/core"
	"pangea/internal/kmeans"
	"pangea/internal/placement"
	"pangea/internal/query"
)

const key = "example-key"

func main() {
	dir, err := os.MkdirTemp("", "pangea-kmeans-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	mgr, err := cluster.NewManager("127.0.0.1:0", key)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	cl := cluster.NewClient(mgr.Addr(), key)

	var workers []*cluster.Worker
	for i := 0; i < 3; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: key,
			Memory:     16 << 20,
			DiskDir:    filepath.Join(dir, fmt.Sprintf("w%d", i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
	}
	e := query.NewExecutor(cl, workers, 2)

	const n, dim, k = 30000, 10, 8
	fmt.Printf("loading %d %d-dimensional points onto %d workers\n", n, dim, len(workers))
	pts := kmeans.GeneratePoints(n, dim, k, 2024)
	if err := cl.CreateSet("points", 256<<10, uint8(core.WriteThrough)); err != nil {
		log.Fatal(err)
	}
	if err := placement.DispatchRandom(cl, e.Addrs, "points", pts); err != nil {
		log.Fatal(err)
	}

	model, err := kmeans.Run(e, "points", kmeans.Config{K: k, Dim: dim, Iterations: 5, Threads: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer kmeans.Cleanup(e, "points")

	fmt.Printf("initialization: %v\n", model.InitTime)
	for i, it := range model.IterTimes {
		fmt.Printf("iteration %d: %v\n", i+1, it)
	}
	fmt.Println("cluster sizes:", model.Assignments)
	for c, cen := range model.Centroids {
		fmt.Printf("centroid %d: [%.1f %.1f ...]\n", c, cen[0], cen[1])
	}
}
