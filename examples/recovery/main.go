// Heterogeneous-replica failure recovery (paper §7, Fig 6).
//
// Loads a lineitem table onto five workers, builds two differently
// partitioned replicas that double as both physical designs and failure
// protection, records the colliding objects in a dedicated set, kills one
// worker, and recovers every replica by re-running partitioners over the
// survivors — verifying not a single record is lost.
//
// Run: go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"pangea/internal/cluster"
	"pangea/internal/placement"
	"pangea/internal/tpch"
)

const key = "example-key"

func main() {
	dir, err := os.MkdirTemp("", "pangea-recovery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	mgr, err := cluster.NewManager("127.0.0.1:0", key)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	cl := cluster.NewClient(mgr.Addr(), key)
	var workers []*cluster.Worker
	var addrs []string
	for i := 0; i < 5; i++ {
		w, err := cluster.NewWorker("127.0.0.1:0", cluster.WorkerConfig{
			PrivateKey: key, Memory: 16 << 20,
			DiskDir: filepath.Join(dir, fmt.Sprintf("w%d", i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		if _, err := cl.RegisterWorker(w.Addr()); err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}

	d := tpch.Generate(0.003, 41)
	fmt.Printf("lineitem: %d rows\n", len(d.Lineitem))
	if err := cl.CreateSet("lineitem", 128<<10, 0); err != nil {
		log.Fatal(err)
	}
	if err := placement.DispatchRandom(cl, addrs, "lineitem", d.Lineitem); err != nil {
		log.Fatal(err)
	}

	keyFn := func(f func([]byte) []byte) placement.KeyFunc {
		return func(rec []byte) ([]byte, error) { return f(rec), nil }
	}
	parts := []*placement.Partitioner{
		{Scheme: "hash(l_orderkey)", NumPartitions: 20, Key: keyFn(tpch.LOrderKey)},
		{Scheme: "hash(l_partkey)", NumPartitions: 20, Key: keyFn(tpch.LPartKey)},
	}
	g, err := placement.BuildGroup(cl, addrs, "lineitem", parts, 128<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replication group: %d members, %d colliding objects (%.2f%%) stored separately\n",
		len(g.Members), g.NumColliding, 100*g.CollidingRatio())

	const failed = 2
	fmt.Printf("killing worker %d...\n", failed)
	if err := workers[failed].Close(); err != nil {
		log.Fatal(err)
	}
	survivors := append(append([]string{}, addrs[:failed]...), addrs[failed+1:]...)

	start := time.Now()
	reports, err := placement.Recover(cl, addrs, g, failed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery finished in %v\n", time.Since(start))
	for _, rep := range reports {
		n, err := placement.CountSet(cl, survivors, rep.Member)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if n != int64(len(d.Lineitem)) {
			status = fmt.Sprintf("MISSING %d", int64(len(d.Lineitem))-n)
		}
		fmt.Printf("  %-28s recovered %5d (%d via re-partition, %d via colliding set) -> %d rows [%s]\n",
			rep.Member, rep.Recovered(), rep.FromSource, rep.FromColliding, n, status)
	}
}
