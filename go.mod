module pangea

go 1.22
