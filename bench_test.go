// Package pangea's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§9). Each benchmark runs one experiment from
// internal/exp and prints its table once (on the first iteration), so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Benchmarks default to the harness's full
// (MB-scale) workloads; set PANGEA_QUICK=1 for the CI-sized ones.
package pangea_test

import (
	"os"
	"sync"
	"testing"

	"pangea/internal/exp"
)

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	o := exp.Options{Quick: os.Getenv("PANGEA_QUICK") == "1", Dir: b.TempDir()}
	for i := 0; i < b.N; i++ {
		t, err := exp.Run(id, o)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if _, dup := printOnce.LoadOrStore(id, true); !dup {
			t.Print(os.Stdout)
		}
	}
}

// BenchmarkFig3KMeansLatency regenerates Fig 3: k-means latency for Pangea
// under six paging policies vs Spark over HDFS, Alluxio and Ignite.
func BenchmarkFig3KMeansLatency(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4KMeansMemory regenerates Fig 4: memory usage per setup.
func BenchmarkFig4KMeansMemory(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5TPCH regenerates Fig 5: the nine TPC-H queries with
// heterogeneous replicas vs runtime repartition.
func BenchmarkFig5TPCH(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Recovery regenerates Fig 6: single-node failure recovery
// latency across cluster sizes.
func BenchmarkFig6Recovery(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7SequentialTransient regenerates Fig 7: sequential access to
// transient data vs OS VM and Alluxio.
func BenchmarkFig7SequentialTransient(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8SequentialPersistent regenerates Fig 8: sequential access to
// persistent data vs the OS file system and HDFS.
func BenchmarkFig8SequentialPersistent(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9PagingSequential regenerates Fig 9: paging policies on the
// sequential workload for both durability classes.
func BenchmarkFig9PagingSequential(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10PagingShuffle regenerates Fig 10: paging policies on the
// shuffle workload.
func BenchmarkFig10PagingShuffle(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTab2SLOC regenerates Table 2: the query processor's source-line
// breakdown.
func BenchmarkTab2SLOC(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTab3Shuffle regenerates Table 3: shuffle write/read latency vs
// the simulated Spark shuffle.
func BenchmarkTab3Shuffle(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTab4KVAggregation regenerates Table 4: key-value aggregation vs
// a Go map and the Redis-like store.
func BenchmarkTab4KVAggregation(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkS7Colliding regenerates the §7 colliding-object study.
func BenchmarkS7Colliding(b *testing.B) { runExperiment(b, "s7") }
