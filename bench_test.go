// Package pangea's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§9). Each benchmark runs one experiment from
// internal/exp and prints its table once (on the first iteration), so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Benchmarks default to the harness's full
// (MB-scale) workloads; set PANGEA_QUICK=1 for the CI-sized ones.
package pangea_test

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pangea/internal/core"
	"pangea/internal/disk"
	"pangea/internal/exp"
	"pangea/internal/memory"
	"pangea/internal/numa"
	"pangea/internal/query"
	"pangea/internal/services"
)

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	o := exp.Options{Quick: os.Getenv("PANGEA_QUICK") == "1", Dir: b.TempDir()}
	for i := 0; i < b.N; i++ {
		t, err := exp.Run(id, o)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if _, dup := printOnce.LoadOrStore(id, true); !dup {
			t.Print(os.Stdout)
		}
	}
}

// BenchmarkFig3KMeansLatency regenerates Fig 3: k-means latency for Pangea
// under six paging policies vs Spark over HDFS, Alluxio and Ignite.
func BenchmarkFig3KMeansLatency(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4KMeansMemory regenerates Fig 4: memory usage per setup.
func BenchmarkFig4KMeansMemory(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5TPCH regenerates Fig 5: the nine TPC-H queries with
// heterogeneous replicas vs runtime repartition.
func BenchmarkFig5TPCH(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Recovery regenerates Fig 6: single-node failure recovery
// latency across cluster sizes.
func BenchmarkFig6Recovery(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7SequentialTransient regenerates Fig 7: sequential access to
// transient data vs OS VM and Alluxio.
func BenchmarkFig7SequentialTransient(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8SequentialPersistent regenerates Fig 8: sequential access to
// persistent data vs the OS file system and HDFS.
func BenchmarkFig8SequentialPersistent(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9PagingSequential regenerates Fig 9: paging policies on the
// sequential workload for both durability classes.
func BenchmarkFig9PagingSequential(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10PagingShuffle regenerates Fig 10: paging policies on the
// shuffle workload.
func BenchmarkFig10PagingShuffle(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTab2SLOC regenerates Table 2: the query processor's source-line
// breakdown.
func BenchmarkTab2SLOC(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTab3Shuffle regenerates Table 3: shuffle write/read latency vs
// the simulated Spark shuffle.
func BenchmarkTab3Shuffle(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTab4KVAggregation regenerates Table 4: key-value aggregation vs
// a Go map and the Redis-like store.
func BenchmarkTab4KVAggregation(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkS7Colliding regenerates the §7 colliding-object study.
func BenchmarkS7Colliding(b *testing.B) { runExperiment(b, "s7c") }

// BenchmarkS7Fairness regenerates the multi-tenant fairness experiment:
// an aggressive hot set vs a well-behaved tenant, with and without
// per-set admission control.
func BenchmarkS7Fairness(b *testing.B) { runExperiment(b, "s7") }

// BenchmarkS5Concurrency regenerates the §5 parallel Pin/Unpin ablation.
func BenchmarkS5Concurrency(b *testing.B) { runExperiment(b, "s5") }

// BenchmarkS5AllocShards regenerates the allocator-sharding ablation:
// parallel page alloc/free with 1 TLSF shard vs one per core.
func BenchmarkS5AllocShards(b *testing.B) { runExperiment(b, "s5b") }

// BenchmarkS6SpillThroughput regenerates the spill-pipeline ablation:
// write-back bandwidth vs drive count with one spill writer per drive.
func BenchmarkS6SpillThroughput(b *testing.B) { runExperiment(b, "s6") }

// BenchmarkS8Locality regenerates the NUMA placement experiment: node-affine
// vs interleaved shard placement over real and fake topologies.
func BenchmarkS8Locality(b *testing.B) { runExperiment(b, "s8") }

// BenchmarkS9Prefetch regenerates the async read-path experiment: cold
// sequential and looping scans vs drive count, read-ahead on vs off.
func BenchmarkS9Prefetch(b *testing.B) { runExperiment(b, "s9") }

// BenchmarkS10Columnar regenerates the columnar-layout experiment: the
// selective scan-filter-agg sweep, batch kernels vs the row pipeline, warm
// and cold.
func BenchmarkS10Columnar(b *testing.B) { runExperiment(b, "s10") }

// BenchmarkS11ZoneMap regenerates the zone-map experiment: the selective
// scan sweep with page skipping on vs off, warm and cold, 1 and 4 drives.
func BenchmarkS11ZoneMap(b *testing.B) { runExperiment(b, "s11") }

// BenchmarkS12Microindex regenerates the microindex experiment: point
// lookups on a non-clustered key column with posting lists vs zone-map
// blooms alone vs no pruning, warm and cold.
func BenchmarkS12Microindex(b *testing.B) { runExperiment(b, "s12") }

// BenchmarkBatchScan is the batch-vs-row scan microbenchmark: one warm
// pass of a 10%-selectivity scan-filter-sum over the same records in both
// layouts. The row variant walks record framing and emits every row
// through the operator chain; the columnar variant runs the vectorized
// date-range kernel and touches only matching values. The gate watches
// both so neither path regresses unnoticed.
func BenchmarkBatchScan(b *testing.B) {
	const pageSize = 64 << 10
	const nRows = 100_000
	widths := []int{8, 2, 8, 46} // key, date, value, payload: 64-byte rows
	rows := make([][]byte, nRows)
	flat := make([]byte, nRows*64)
	for i := range rows {
		r := flat[i*64 : (i+1)*64]
		binary.LittleEndian.PutUint64(r[0:8], uint64(i))
		binary.LittleEndian.PutUint16(r[8:10], uint16(i%100))
		binary.LittleEndian.PutUint64(r[10:18], math.Float64bits(float64(i%1000)))
		rows[i] = r
	}
	for _, cfg := range []struct {
		name     string
		columnar bool
	}{{"layout=row", false}, {"layout=columnar", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			arr, err := disk.NewArray(b.TempDir(), 1, disk.Unthrottled())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = arr.RemoveAll() })
			bp, err := core.NewPool(core.PoolConfig{Memory: 64 << 20, Array: arr})
			if err != nil {
				b.Fatal(err)
			}
			spec := core.SetSpec{Name: "facts", PageSize: pageSize}
			if cfg.columnar {
				spec.Layout = core.LayoutColumnar
				spec.Columns = widths
			}
			set, err := bp.CreateSet(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := services.WriteAll(set, rows); err != nil {
				b.Fatal(err)
			}
			var matched int64
			var sum float64
			scan := func() error {
				matched, sum = 0, 0
				if cfg.columnar {
					return query.ScanBatches(set, 1, func(_ int, bt *query.Batch) error {
						bt.SelU16Range(1, 0, 10)
						vals := bt.Col(2)
						for _, r := range bt.Sel() {
							sum += math.Float64frombits(binary.LittleEndian.Uint64(vals[int(r)*8:]))
						}
						matched += int64(bt.Selected())
						return nil
					})
				}
				in := query.Filter(query.Scan(set, 1), func(r query.Row) bool {
					return binary.LittleEndian.Uint16(r[8:10]) < 10
				})
				return in(func(r query.Row) error {
					sum += math.Float64frombits(binary.LittleEndian.Uint64(r[10:18]))
					matched++
					return nil
				})
			}
			if err := scan(); err != nil { // prime the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := scan(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if matched != nRows/10 {
				b.Fatalf("matched %d rows, want %d", matched, nRows/10)
			}
			b.SetBytes(int64(nRows) * 64)
		})
	}
}

// BenchmarkNUMAAffinity measures the allocation path under a fake 4-node
// topology: local placement (each goroutine homed on its own node's shards,
// what the pool does at CreateSet) vs interleaved placement (homes walk
// every shard regardless of node, the pre-NUMA behaviour). On single-socket
// machines the two tie — the benchmark exists so the bench gate catches a
// regression in the two-tier routing itself, and on multi-socket hardware
// the local variant additionally keeps its pages out of remote DRAM.
func BenchmarkNUMAAffinity(b *testing.B) {
	const shards = 8
	topo := numa.NewFake(4, shards)
	for _, cfg := range []struct {
		name  string
		local bool
	}{{"placement=local", true}, {"placement=interleaved", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			alloc := memory.NewShardedTLSFNUMA(memory.NewArena(256<<20), shards, topo, nil)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(next.Add(1))
				node := topo.NodeOfCPU(w % topo.NumCPUs())
				i := 0
				for pb.Next() {
					home := alloc.HomeShardOn(node, w)
					if !cfg.local {
						home = alloc.HomeShard(w + i)
					}
					off, err := alloc.AllocAffinity(4<<10, home)
					if err != nil {
						b.Error(err)
						return
					}
					alloc.Free(off)
					i++
				}
			})
		})
	}
}

// BenchmarkSpillParallel measures the eviction daemon's spill pipeline
// directly: a producer streams dirty write-back pages through a pool an
// eighth the size of the data, so its rate is the daemon's write-back
// rate. With per-drive writers the ns/op should drop roughly with the
// drive count (the drives share nothing but the producer); the seed's
// serial write-back loop kept 1 and 4 drives at the same speed.
func BenchmarkSpillParallel(b *testing.B) {
	const pageSize = 64 << 10
	const poolPages = 64
	const totalPages = 256
	cfg := disk.Config{ReadMBps: 400, WriteMBps: 400, SeekLatency: 50 * time.Microsecond}
	for _, drives := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("drives=%d", drives), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				arr, err := disk.NewArray(b.TempDir(), drives, cfg)
				if err != nil {
					b.Fatal(err)
				}
				bp, err := core.NewPool(core.PoolConfig{Memory: poolPages * pageSize, Array: arr})
				if err != nil {
					b.Fatal(err)
				}
				set, err := bp.CreateSet(core.SetSpec{Name: "spill", PageSize: pageSize})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < totalPages; j++ {
					p, err := set.NewPage()
					if err != nil {
						b.Fatal(err)
					}
					p.Bytes()[0] = byte(j)
					if err := set.Unpin(p, true); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := bp.DropSet(set); err != nil {
					b.Fatal(err)
				}
				_ = arr.RemoveAll()
			}
			b.SetBytes(int64(totalPages) * pageSize)
		})
	}
}

// BenchmarkScanPrefetch measures the asynchronous read path directly: a
// cold sequential scan through a pool a quarter the size of the data, with
// automatic read-ahead feeding the per-drive read queues. The ns/op is the
// scan's wall time, so it covers hinting, speculative allocation, the
// starved-reclaim handshake with the eviction daemon, and the coalescing
// pin path; at drives=4 it should run several times faster than drives=1,
// and the gate catches a regression in any stage of that pipeline.
func BenchmarkScanPrefetch(b *testing.B) {
	const pageSize = 64 << 10
	const poolPages = 16
	const totalPages = 64
	cfg := disk.Config{ReadMBps: 400, WriteMBps: 400, SeekLatency: 50 * time.Microsecond}
	for _, drives := range []int{1, 4} {
		b.Run(fmt.Sprintf("drives=%d", drives), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				arr, err := disk.NewArray(b.TempDir(), drives, cfg)
				if err != nil {
					b.Fatal(err)
				}
				bp, err := core.NewPool(core.PoolConfig{Memory: poolPages * pageSize, Array: arr})
				if err != nil {
					b.Fatal(err)
				}
				set, err := bp.CreateSet(core.SetSpec{Name: "scan", PageSize: pageSize, Durability: core.WriteThrough})
				if err != nil {
					b.Fatal(err)
				}
				rec := make([]byte, 4<<10)
				w := services.NewSeqWriter(set)
				for set.NumPages() < totalPages {
					if err := w.Add(rec); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				// Chill: grow a dirty filler until the clean write-through
				// data pages are all evicted, then drop it (no spill on drop).
				filler, err := bp.CreateSet(core.SetSpec{Name: "filler", PageSize: pageSize})
				if err != nil {
					b.Fatal(err)
				}
				for set.ResidentPages() > 0 {
					p, err := filler.NewPage()
					if err != nil {
						b.Fatal(err)
					}
					if err := filler.Unpin(p, false); err != nil {
						b.Fatal(err)
					}
				}
				if err := bp.DropSet(filler); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := services.ScanSet(set, 1, func(int, []byte) error { return nil }); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := bp.DropSet(set); err != nil {
					b.Fatal(err)
				}
				_ = arr.RemoveAll()
			}
			b.SetBytes(int64(totalPages) * pageSize)
		})
	}
}

// BenchmarkShardedAlloc measures allocator contention directly: parallel
// 4 KiB alloc/free against a single TLSF shard (the seed design, every
// allocation behind one mutex) vs one shard per core with per-size-class
// front caches. Run with -cpu 1,2,4,8 to see the scaling curve.
func BenchmarkShardedAlloc(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{{"shards=1", 1}, {"shards=auto", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			alloc := memory.NewShardedTLSF(memory.NewArena(256<<20), cfg.shards)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				home := int(next.Add(1))
				for pb.Next() {
					off, err := alloc.AllocAffinity(4<<10, home)
					if err != nil {
						b.Error(err)
						return
					}
					alloc.Free(off)
				}
			})
		})
	}
}

// BenchmarkPoolAllocParallel measures the pool-level allocation path:
// each goroutine appends pages to its own locality set (home-shard routed
// NewPage/Unpin) and recycles the set once it reaches 64 pages, so the
// steady state is allocator traffic, not eviction I/O.
func BenchmarkPoolAllocParallel(b *testing.B) {
	arr, err := disk.NewArray(b.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := core.NewPool(core.PoolConfig{Memory: 256 << 20, Array: arr})
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := next.Add(1)
		gen := 0
		s, err := bp.CreateSet(core.SetSpec{Name: fmt.Sprintf("a%d.%d", w, gen), PageSize: 4 << 10})
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			p, err := s.NewPage()
			if err != nil {
				b.Error(err)
				return
			}
			if err := s.Unpin(p, false); err != nil {
				b.Error(err)
				return
			}
			if s.NumPages() >= 64 {
				if err := bp.DropSet(s); err != nil {
					b.Error(err)
					return
				}
				gen++
				s, err = bp.CreateSet(core.SetSpec{Name: fmt.Sprintf("a%d.%d", w, gen), PageSize: 4 << 10})
				if err != nil {
					b.Error(err)
					return
				}
			}
		}
		_ = bp.DropSet(s)
	})
}

// parallelPool builds a pool with nSets locality sets of pagesPerSet
// resident pages each, sized so the benchmark never evicts: what's measured
// is locking, not I/O.
func parallelPool(b *testing.B, nSets, pagesPerSet int) []*core.LocalitySet {
	b.Helper()
	arr, err := disk.NewArray(b.TempDir(), 1, disk.Unthrottled())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = arr.RemoveAll() })
	bp, err := core.NewPool(core.PoolConfig{Memory: 64 << 20, Array: arr})
	if err != nil {
		b.Fatal(err)
	}
	sets := make([]*core.LocalitySet, nSets)
	for i := range sets {
		s, err := bp.CreateSet(core.SetSpec{Name: "s" + string(rune('a'+i)), PageSize: 4 << 10})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < pagesPerSet; j++ {
			p, err := s.NewPage()
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Unpin(p, false); err != nil {
				b.Fatal(err)
			}
		}
		sets[i] = s
	}
	return sets
}

// BenchmarkPoolParallel measures multi-goroutine Pin/Unpin throughput with
// each goroutine on its own locality set. Under the per-set locking model
// this scales with GOMAXPROCS (run with -cpu 1,2,4,8 to see the curve); the
// seed's single pool mutex flat-lined it.
func BenchmarkPoolParallel(b *testing.B) {
	const nSets, pagesPerSet = 16, 16
	sets := parallelPool(b, nSets, pagesPerSet)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := sets[int(next.Add(1))%nSets]
		i := 0
		for pb.Next() {
			p, err := s.Pin(int64(i % pagesPerSet))
			if err != nil {
				b.Error(err)
				return
			}
			if err := s.Unpin(p, false); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkPoolParallelSharedSet is the contended counterpart: every
// goroutine hammers the same locality set, so all traffic serializes on
// that set's lock — the upper bound of what the old global mutex allowed
// for the whole pool.
func BenchmarkPoolParallelSharedSet(b *testing.B) {
	const pagesPerSet = 16
	sets := parallelPool(b, 1, pagesPerSet)
	s := sets[0]
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1))
		for pb.Next() {
			p, err := s.Pin(int64(i % pagesPerSet))
			if err != nil {
				b.Error(err)
				return
			}
			if err := s.Unpin(p, false); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
